package inquiry

import (
	"errors"
	"fmt"
	"math/rand"

	"kbrepair/internal/core"
	"kbrepair/internal/store"
)

// User answers sound questions. Implementations must return one of the
// question's fixes.
type User interface {
	// Choose picks one fix from the question. kb is the current (not yet
	// updated) knowledge base, offered for context.
	Choose(kb *core.KB, q Question) (core.Fix, error)
}

// ErrNoAnswer is returned by users that cannot answer the question (e.g. an
// oracle asked about positions its repair never touches — which Lemma 4.7
// proves impossible during a well-formed inquiry).
var ErrNoAnswer = errors.New("inquiry: user cannot answer the question")

// FuncUser adapts a function to the User interface.
type FuncUser func(kb *core.KB, q Question) (core.Fix, error)

// Choose implements User.
func (f FuncUser) Choose(kb *core.KB, q Question) (core.Fix, error) { return f(kb, q) }

// SimulatedUser chooses uniformly at random among the proposed fixes — the
// end-user simulation of the paper's experimental setup (§6).
type SimulatedUser struct {
	Rng *rand.Rand
}

// NewSimulatedUser builds a simulated user with the given seed.
func NewSimulatedUser(seed int64) *SimulatedUser {
	return &SimulatedUser{Rng: rand.New(rand.NewSource(seed))}
}

// Choose implements User.
func (u *SimulatedUser) Choose(_ *core.KB, q Question) (core.Fix, error) {
	if q.Empty() {
		return core.Fix{}, ErrNoAnswer
	}
	return q.Fixes[u.Rng.Intn(len(q.Fixes))], nil
}

// Oracle is the §4.1 user model: it has a u-repair F_O in mind and answers
// every question with a fix from diff(F, F_O). When several offered fixes
// belong to the diff, it chooses one at random (the paper's
// non-deterministic choice), or the first if no RNG is provided.
//
// The target store must have the same fact ids as the knowledge base under
// repair (the natural match(x) by identity). A fix proposing a fresh
// existential variable matches a target position holding any labeled null:
// both denote "an unknown value unique to this position".
type Oracle struct {
	Target *store.Store
	Rng    *rand.Rand
}

// NewOracle builds an oracle for the target repair.
func NewOracle(target *store.Store, seed int64) *Oracle {
	return &Oracle{Target: target, Rng: rand.New(rand.NewSource(seed))}
}

// Matches reports whether the fix agrees with the oracle's repair at its
// position, taking null-for-null equivalence into account.
func (o *Oracle) Matches(kb *core.KB, f core.Fix) bool {
	if !o.Target.Valid(f.Pos.Fact) || f.Pos.Arg >= o.Target.Arity(f.Pos.Fact) {
		return false
	}
	want := o.Target.Value(f.Pos)
	cur := kb.Facts.Value(f.Pos)
	if cur == want || (cur.IsNull() && want.IsNull()) {
		return false // position already agrees with the repair: not in diff
	}
	if f.Value == want {
		return true
	}
	return f.Value.IsNull() && want.IsNull()
}

// Choose implements User: among the offered fixes, those in diff(F, F_O)
// are candidates; one is returned (randomly if an RNG is set).
func (o *Oracle) Choose(kb *core.KB, q Question) (core.Fix, error) {
	var cands core.FixSet
	for _, f := range q.Fixes {
		if o.Matches(kb, f) {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return core.Fix{}, fmt.Errorf("%w: none of %d fixes in oracle diff", ErrNoAnswer, len(q.Fixes))
	}
	if o.Rng == nil {
		return cands[0], nil
	}
	return cands[o.Rng.Intn(len(cands))], nil
}

// RemainingDiff returns diff(F, F_O) for the current KB state — the fixes
// the oracle still wants applied. Null-valued target positions whose
// current value is already a null are considered settled.
func (o *Oracle) RemainingDiff(kb *core.KB) core.FixSet {
	var out core.FixSet
	for _, id := range kb.Facts.IDs() {
		for i := 0; i < kb.Facts.Arity(id); i++ {
			pos := core.Position{Fact: id, Arg: i}
			cur, want := kb.Facts.Value(pos), o.Target.Value(pos)
			if cur == want || (cur.IsNull() && want.IsNull()) {
				continue
			}
			out = append(out, core.Fix{Pos: pos, Value: want})
		}
	}
	return out
}
