package inquiry

import (
	"bytes"
	"testing"
	"time"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
	"kbrepair/internal/synth"
)

// traceClock steps 1ms per reading from a fixed epoch, making every span
// timestamp (and the engine's delay_us attribute, which reads the same
// clock) a pure function of the execution's read sequence.
func traceClock() func() time.Time {
	t := time.UnixMicro(1_700_000_000_000_000).UTC()
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// traceBytes repairs the fixed-seed workload at the given worker count with
// a JSONL sink and injected clock on the default tracer, returning the raw
// trace.
func traceBytes(t *testing.T, workers int) []byte {
	t.Helper()
	par.SetWorkers(workers)
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	tr := obs.DefaultTracer()
	tr.ResetSeq()
	tr.SetNow(traceClock())
	obs.SetTraceSink(sink)
	defer func() {
		obs.SetTraceSink(nil)
		tr.SetNow(nil)
	}()

	g, err := synth.Generate(synth.Params{
		Seed:               9,
		NumFacts:           120,
		InconsistencyRatio: 0.25,
		NumCDDs:            8,
		NumTGDs:            4,
		JoinVarRatio:       0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g.KB, OptiMCD{}, NewSimulatedUser(17), 17, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("repair did not converge")
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossWorkers is the tracing counterpart of
// TestRepairDeterministicAcrossWorkers: with an injected clock, the JSONL
// trace of a fixed-seed repair must be byte-identical at -workers 1, 2 and
// 8. All spans are emitted from the engine goroutine (parallel Π-check
// chases run TraceQuiet and are attributed at batch level), so any
// divergence means a worker leaked a record or the emission order shifted.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	base := traceBytes(t, 1)
	if !bytes.Contains(base, []byte(`"inquiry.question"`)) {
		t.Fatal("trace has no question spans; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		got := traceBytes(t, w)
		if bytes.Equal(got, base) {
			continue
		}
		i := 0
		for i < len(got) && i < len(base) && got[i] == base[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) []byte {
			if hi := i + 120; hi < len(b) {
				return b[lo:hi]
			}
			return b[lo:]
		}
		t.Fatalf("workers=%d trace diverges from workers=1 at byte %d:\n--- workers=1\n…%s…\n--- workers=%d\n…%s…",
			w, i, clip(base), w, clip(got))
	}
}

// constClock returns the same instant on every reading. Unlike the
// stepping traceClock it is safe to read from worker goroutines, which is
// exactly what enabling sched recording adds: lane timestamps come from
// the same injectable clock as spans, but lane records never enter the
// trace stream, so the JSONL trace must stay byte-identical across worker
// counts even with the recorder on.
func constClock() func() time.Time {
	at := time.UnixMicro(1_700_000_000_000_000).UTC()
	return func() time.Time { return at }
}

// traceBytesWithClock is traceBytes with an injectable clock.
func traceBytesWithClock(t *testing.T, workers int, clock func() time.Time) []byte {
	t.Helper()
	par.SetWorkers(workers)
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	tr := obs.DefaultTracer()
	tr.ResetSeq()
	tr.SetNow(clock)
	obs.SetTraceSink(sink)
	defer func() {
		obs.SetTraceSink(nil)
		tr.SetNow(nil)
	}()

	g, err := synth.Generate(synth.Params{
		Seed:               9,
		NumFacts:           120,
		InconsistencyRatio: 0.25,
		NumCDDs:            8,
		NumTGDs:            4,
		JoinVarRatio:       0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g.KB, OptiMCD{}, NewSimulatedUser(17), 17, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("repair did not converge")
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicWithSchedEnabled pins the tentpole's no-trace-
// perturbation contract: with lane recording on, worker goroutines read
// the tracer clock for their lane stamps, but the span stream must not
// change — byte-identical JSONL traces at -workers 1, 2 and 8. A constant
// injected clock keeps the extra clock reads race-free and timestamp-
// neutral; structure and emission order are still fully asserted.
func TestTraceDeterministicWithSchedEnabled(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	sched.Enable(0)
	t.Cleanup(sched.Disable)
	base := traceBytesWithClock(t, 1, constClock())
	if !bytes.Contains(base, []byte(`"inquiry.question"`)) {
		t.Fatal("trace has no question spans; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		sched.Enable(0)
		got := traceBytesWithClock(t, w, constClock())
		if !bytes.Equal(got, base) {
			t.Fatalf("workers=%d trace with sched enabled diverges from workers=1 (len %d vs %d)",
				w, len(got), len(base))
		}
		if s := sched.Capture(); s.IntervalsTotal == 0 {
			t.Fatalf("workers=%d: no lane intervals recorded; test would be vacuous", w)
		}
	}
}
