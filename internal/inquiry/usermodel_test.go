package inquiry

import (
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/logic"
)

func TestNoisyOracleZeroNoiseEqualsOracle(t *testing.T) {
	kb := fig1aKB(t)
	target := kb.Facts.Clone()
	target.MustSetValue(core.Position{Fact: 1, Arg: 1}, target.FreshNull())
	noisy := NewNoisyOracle(NewOracle(target, 1), 0, 1)
	e := New(kb, Random{}, noisy, 1, Options{})
	res, err := e.RunBasic()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("inconsistent result")
	}
	if noisy.Mistakes != 0 {
		t.Errorf("mistakes = %d with zero error rate", noisy.Mistakes)
	}
	if !kb.Facts.EqualUpToNullRenaming(target) {
		t.Error("zero-noise oracle did not reproduce the repair")
	}
}

func TestNoisyOracleAlwaysTerminatesConsistent(t *testing.T) {
	// Even a fully random "oracle" (error rate 1) keeps the soundness
	// guarantee: the dialogue ends in a consistent KB.
	for seed := int64(0); seed < 6; seed++ {
		kb := fig1bKB(t)
		target := kb.Facts.Clone()
		target.MustSetValue(core.Position{Fact: 1, Arg: 0}, logic.C("Mike"))
		target.MustSetValue(core.Position{Fact: 5, Arg: 0}, target.FreshNull())
		noisy := NewNoisyOracle(NewOracle(target, seed), 1.0, seed)
		e := New(kb, Random{}, noisy, seed, Options{})
		res, err := e.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Consistent {
			t.Errorf("seed %d: inconsistent", seed)
		}
		if noisy.Mistakes == 0 {
			t.Errorf("seed %d: error rate 1 produced no mistakes", seed)
		}
	}
}

func TestCautiousUserBias(t *testing.T) {
	nullFix := core.Fix{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.N("n1")}
	constFix := core.Fix{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.C("a")}
	q := Question{Fixes: core.FixSet{nullFix, constFix}}

	alwaysNull := NewCautiousUser(1, 1)
	for i := 0; i < 20; i++ {
		f, err := alwaysNull.Choose(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Value.IsNull() {
			t.Fatal("NullBias=1 chose a constant")
		}
	}
	neverNull := NewCautiousUser(0, 1)
	for i := 0; i < 20; i++ {
		f, err := neverNull.Choose(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if f.Value.IsNull() {
			t.Fatal("NullBias=0 chose a null")
		}
	}
	// Degenerate questions still answerable.
	onlyNulls := Question{Fixes: core.FixSet{nullFix}}
	if _, err := neverNull.Choose(nil, onlyNulls); err != nil {
		t.Errorf("null-only question unanswerable: %v", err)
	}
	onlyConsts := Question{Fixes: core.FixSet{constFix}}
	if _, err := alwaysNull.Choose(nil, onlyConsts); err != nil {
		t.Errorf("const-only question unanswerable: %v", err)
	}
	if _, err := alwaysNull.Choose(nil, Question{}); err == nil {
		t.Error("empty question answered")
	}
}

func TestCautiousUserDrivesInquiry(t *testing.T) {
	for _, bias := range []float64{0, 0.5, 1} {
		kb := fig1bKB(t)
		e := New(kb, OptiJoin{}, NewCautiousUser(bias, 3), 3, Options{})
		res, err := e.Run()
		if err != nil {
			t.Fatalf("bias %.1f: %v", bias, err)
		}
		if !res.Consistent {
			t.Errorf("bias %.1f: inconsistent", bias)
		}
		if bias == 1 {
			// The maximally cautious user only ever introduces nulls.
			for _, f := range res.AppliedFixes {
				if !f.Value.IsNull() {
					t.Errorf("bias 1 applied constant fix %v", f)
				}
			}
		}
	}
}

func TestAdaptiveStrategy(t *testing.T) {
	s := NewAdaptiveStrategy()
	if s.Name() != "adaptive" {
		t.Error("name")
	}
	for seed := int64(0); seed < 5; seed++ {
		kb := fig1bKB(t)
		e := New(kb, NewAdaptiveStrategy(), NewSimulatedUser(seed), seed, Options{})
		res, err := e.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Consistent {
			t.Errorf("seed %d: inconsistent", seed)
		}
	}
}

func TestAdaptiveStrategyLearnsWeights(t *testing.T) {
	kb := fig1bKB(t)
	s := NewAdaptiveStrategy()
	e := New(kb, s, NewSimulatedUser(1), 1, Options{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	learned := false
	for _, w := range s.weights {
		if w > 1 {
			learned = true
		}
	}
	if !learned {
		t.Error("no predicate weights learned after answers")
	}
}
