package inquiry

import (
	"fmt"
	"strings"
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
	"kbrepair/internal/synth"
)

// repairTranscript runs one full two-phase repair of a fixed-seed
// synthetic workload (CDDs + TGDs, so both naive and chase-level conflict
// detection and the parallel trigger collection are exercised) and renders
// everything the user saw and did plus the final store — the byte-level
// identity the parallel execution layer must preserve.
func repairTranscript(t *testing.T, workers int) string {
	return repairTranscriptOpts(t, workers, synth.Params{
		Seed:               9,
		NumFacts:           120,
		InconsistencyRatio: 0.25,
		NumCDDs:            8,
		NumTGDs:            4,
		JoinVarRatio:       0.3,
	}, Options{})
}

func repairTranscriptOpts(t *testing.T, workers int, params synth.Params, opts Options) string {
	t.Helper()
	par.SetWorkers(workers)
	g, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	kb := g.KB
	var sb strings.Builder
	sim := NewSimulatedUser(17)
	user := FuncUser(func(kb *core.KB, q Question) (core.Fix, error) {
		sb.WriteString(q.Describe(kb))
		f, err := sim.Choose(kb, q)
		if err == nil {
			fmt.Fprintf(&sb, "-> chose %s\n", f.Describe(kb.Facts))
		}
		return f, err
	})
	e := New(kb, OptiMCD{}, user, 17, opts)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("repair did not converge")
	}
	fmt.Fprintf(&sb, "questions=%d phase1=%d\n", res.Questions, res.InitialNaive)
	for i, rd := range res.Rounds {
		fmt.Fprintf(&sb, "round %d: phase=%d size=%d before=%d answer=%s\n",
			i, rd.Phase, rd.QuestionSize, rd.ConflictsBefore, rd.Answer.Describe(kb.Facts))
	}
	sb.WriteString(kb.Facts.String())
	return sb.String()
}

// TestRepairDeterministicAcrossWorkers is the end-to-end determinism gate
// of the parallel execution layer: a fixed-seed synthetic workload
// repaired with -workers 1 and -workers 8 must produce identical question
// transcripts (every question, every answer, in order) and identical final
// stores.
func TestRepairDeterministicAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	seq := repairTranscript(t, 1)
	if !strings.Contains(seq, "round 0:") {
		t.Fatal("workload asked no questions; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		if got := repairTranscript(t, w); got != seq {
			i := 0
			for i < len(got) && i < len(seq) && got[i] == seq[i] {
				i++
			}
			lo, hi := i-80, i+80
			if lo < 0 {
				lo = 0
			}
			clip := func(s string) string {
				if hi < len(s) {
					return s[lo:hi]
				}
				return s[lo:]
			}
			t.Fatalf("workers=%d transcript diverges from workers=1 at byte %d:\n--- workers=1\n…%s…\n--- workers=%d\n…%s…",
				w, i, clip(seq), w, clip(got))
		}
	}
}

// TestPiFilterDeterministicAcrossWorkers pins the parallel Π-repairability
// filtering path: with the Π-RepOpt fast path disabled, every candidate fix
// of every question goes through a full Algorithm 1 check, which CheckBatch
// fans out across the worker pool. The transcript — question contents and
// order included — must be byte-identical at every worker count.
func TestPiFilterDeterministicAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	params := synth.Params{
		Seed:               11,
		NumFacts:           60,
		InconsistencyRatio: 0.25,
		NumCDDs:            6,
		NumTGDs:            2,
		JoinVarRatio:       0.3,
	}
	opts := Options{DisablePiRepOpt: true}
	seq := repairTranscriptOpts(t, 1, params, opts)
	if !strings.Contains(seq, "round 0:") {
		t.Fatal("workload asked no questions; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		if got := repairTranscriptOpts(t, w, params, opts); got != seq {
			t.Fatalf("workers=%d full-Π-check transcript diverges from workers=1 (len %d vs %d)",
				w, len(got), len(seq))
		}
	}
}

// TestRepairDeterministicWithSchedEnabled re-runs the end-to-end
// determinism gate with the lane recorder on: sched recording is
// observability-only, so transcripts and final stores must stay identical
// across worker counts, and the lane books must balance for every run.
func TestRepairDeterministicWithSchedEnabled(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	sched.Enable(0)
	t.Cleanup(sched.Disable)
	seq := repairTranscript(t, 1)
	if !strings.Contains(seq, "round 0:") {
		t.Fatal("workload asked no questions; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		sched.Enable(0) // fresh recorder per worker count
		if got := repairTranscript(t, w); got != seq {
			t.Fatalf("workers=%d transcript with sched enabled diverges from workers=1 (len %d vs %d)",
				w, len(got), len(seq))
		}
		s := sched.Capture()
		if s.IntervalsTotal == 0 {
			t.Fatalf("workers=%d: no lane intervals recorded; test would be vacuous", w)
		}
		if s.OpenFanouts != 0 || s.AbortedFanouts != 0 {
			t.Fatalf("workers=%d: lane books unbalanced after repair: open %d aborted %d",
				w, s.OpenFanouts, s.AbortedFanouts)
		}
	}
}
