package inquiry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/obs"
)

// fetchStatus scrapes /statusz from the debug mux over real HTTP.
func fetchStatus(t *testing.T, url string) obs.Status {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st obs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statusz is not valid JSON: %v\n%s", err, body)
	}
	return st
}

// TestStatuszDuringRepair drives a real repair session and scrapes
// /statusz from inside the user callback — the point where a question is
// open — asserting the live gauges show an in-progress run, then checks
// the terminal state after the run completes.
func TestStatuszDuringRepair(t *testing.T) {
	srv := httptest.NewServer(obs.DebugMux())
	defer srv.Close()

	kb := fig1bKB(t)
	sim := NewSimulatedUser(3)
	sawLive := false
	user := FuncUser(func(kb *core.KB, q Question) (core.Fix, error) {
		st := fetchStatus(t, srv.URL)
		if st.Phase != 1 && st.Phase != 2 {
			t.Errorf("mid-run phase = %d, want 1 or 2", st.Phase)
		}
		if st.ConflictsRemaining < 1 {
			t.Errorf("mid-run conflicts_remaining = %d, want >= 1", st.ConflictsRemaining)
		}
		sawLive = true
		return sim.Choose(kb, q)
	})

	e := New(kb, Random{}, user, 1, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sawLive {
		t.Fatal("user callback never ran — KB was not inconsistent?")
	}
	if !res.Consistent {
		t.Fatal("repair did not converge")
	}

	st := fetchStatus(t, srv.URL)
	if st.Phase != 3 {
		t.Errorf("final phase = %d, want 3 (done)", st.Phase)
	}
	if st.ConflictsRemaining != 0 {
		t.Errorf("final conflicts_remaining = %d, want 0", st.ConflictsRemaining)
	}
	if st.QuestionsAsked != int64(res.Questions) {
		t.Errorf("questions_asked gauge = %d, result says %d", st.QuestionsAsked, res.Questions)
	}
	// chase.round resets to 0 when each chase run completes; after the
	// repair no chase is in flight, so a stale round from the last run
	// must not linger on the dashboard.
	if st.Gauges[obs.StatusChaseRound] != 0 {
		t.Errorf("chase.round = %d after run completion, want 0 (idle)", st.Gauges[obs.StatusChaseRound])
	}
}
