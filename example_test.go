package kbrepair_test

import (
	"fmt"

	"kbrepair"
)

// The paper's running example (Figure 1(a)): detect the contradiction and
// list the conflict.
func ExampleParseKB() {
	kb, err := kbrepair.ParseKB(`
		prescribed(Aspirin, John).
		hasAllergy(John, Aspirin).
		[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
	`)
	if err != nil {
		panic(err)
	}
	consistent, _ := kb.IsConsistent()
	fmt.Println("consistent:", consistent)
	for _, c := range kbrepair.NaiveConflicts(kb) {
		fmt.Println("conflict witnessed by", c.Hom)
	}
	// Output:
	// consistent: false
	// conflict witnessed by {X=Aspirin, Y=John}
}

// Repairing with a simulated user: the engine asks sound questions until
// the knowledge base is consistent.
func ExampleEngine_Run() {
	kb, _ := kbrepair.ParseKB(`
		prescribed(Aspirin, John).
		hasAllergy(John, Aspirin).
		[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
	`)
	engine := kbrepair.NewEngine(kb, kbrepair.OptiJoin(), kbrepair.NewSimulatedUser(7), 7, kbrepair.EngineOptions{})
	res, err := engine.Run()
	if err != nil {
		panic(err)
	}
	consistent, _ := kb.IsConsistent()
	fmt.Println("questions:", res.Questions, "consistent:", consistent)
	// Output:
	// questions: 1 consistent: true
}

// The §4.1 oracle: a user with a specific repair in mind; the dialogue
// reconstructs exactly that repair (Proposition 4.8).
func ExampleOracle() {
	kb, _ := kbrepair.ParseKB(`
		prescribed(Aspirin, John).
		hasAllergy(John, Aspirin).
		hasAllergy(Mike, Penicillin).
		[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
	`)
	// The oracle believes the allergy record belongs to Mike. (Fix values
	// come from active domains — Def. 3.1 — so Mike must occur in the KB,
	// which the third fact guarantees.)
	target := kb.Facts.Clone()
	target.MustSetValue(kbrepair.Position{Fact: 1, Arg: 0}, kbrepair.Const("Mike"))

	engine := kbrepair.NewEngine(kb, kbrepair.RandomStrategy(), kbrepair.NewOracle(target, 1), 1, kbrepair.EngineOptions{})
	if _, err := engine.RunBasic(); err != nil {
		panic(err)
	}
	fmt.Print(kb.Facts)
	// Output:
	// prescribed(Aspirin, John).
	// hasAllergy(Mike, Aspirin).
	// hasAllergy(Mike, Penicillin).
}

// Π-repairability (Algorithm 1): pinning both sides of a join makes the
// Example 3.7 knowledge base unrepairable.
func ExamplePiRepairable() {
	kb, _ := kbrepair.ParseKB(`
		p(a, b).
		q(b, d).
		[cdd] p(X, Y), q(Y, Z) -> !.
	`)
	free, _ := kbrepair.PiRepairable(kb, kbrepair.NewPi())
	pinned, _ := kbrepair.PiRepairable(kb, kbrepair.NewPi(
		kbrepair.Position{Fact: 0, Arg: 1},
		kbrepair.Position{Fact: 1, Arg: 0},
	))
	fmt.Println("with free positions:", free)
	fmt.Println("with the join pinned:", pinned)
	// Output:
	// with free positions: true
	// with the join pinned: false
}

// Update-based repairing preserves information that deletion discards: a
// single position becomes an unknown instead of losing the whole fact.
func ExampleApply() {
	kb, _ := kbrepair.ParseKB(`
		prescribed(Aspirin, John).
		hasAllergy(John, Aspirin).
		[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
	`)
	fix := kbrepair.Fix{
		Pos:   kbrepair.Position{Fact: 1, Arg: 1},
		Value: kbrepair.NullTerm("x1"),
	}
	repaired, _ := kbrepair.Apply(kb.Facts, kbrepair.FixSet{fix})
	fmt.Print(repaired)
	// Output:
	// prescribed(Aspirin, John).
	// hasAllergy(John, _:x1).
}
